// Property test for the event engine: a seeded random script of
// schedule / cancel / step / run_until operations (including reentrant
// scheduling, cancellation and stop requests from inside callbacks) is
// interpreted twice — once against sim::Scheduler and once against a naive
// sorted-vector reference model implementing the documented semantics —
// and the two execution traces must be identical.
//
// The script format and reference model are deliberately engine-agnostic:
// this test was written and passing against the pre-rewrite
// std::function/unordered_set scheduler and must pass unchanged against
// any rewritten engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gfc::sim {
namespace {

// What a callback does when it fires. Parameters are fixed at schedule
// time; serial-relative targets are resolved at fire time identically by
// both interpreters.
enum class Action : std::uint8_t {
  kNone,
  kScheduleSameT,   // schedule a kNone child at the current timestamp
  kScheduleLater,   // schedule a kNone child at now + param
  kCancelDerived,   // cancel serial (self*7+3) % issued-so-far
  kRequestStop,
};

struct ScheduledSpec {
  Action action;
  TimePs param = 0;
};

// Top-level script operations.
enum class Op : std::uint8_t {
  kSchedule,
  kCancel,
  kReschedule,  // move a pending event to now + delay (fresh FIFO order)
  kStep,
  kRunUntil,
  kRunAll,
};

struct ScriptOp {
  Op op;
  TimePs delay = 0;     // kSchedule: offset from now; kRunUntil: horizon offset
  ScheduledSpec spec{};  // kSchedule
  std::uint64_t target_pick = 0;  // kCancel/kReschedule: pick mod issued
};

// Delays that land on an implementation's likely structural boundaries:
// power-of-two bucket edges and off-by-ones, coarse-bucket frontiers, and
// offsets at/beyond a far-future horizon (the current engine's timing
// wheel covers 2^41 ps; a different engine just sees large delays — the
// script stays engine-agnostic either way).
TimePs boundary_delay(Rng& rng) {
  constexpr TimePs kTick = TimePs{1} << 17;
  constexpr TimePs kHorizon = kTick << 24;
  switch (rng.uniform_int(0, 7)) {
    case 0: return kTick - 1;
    case 1: return kTick;
    case 2: return kTick + 1;
    case 3: return kTick << 6;
    case 4: return kTick << 12;
    case 5: return kHorizon - kTick;
    case 6: return kHorizon;  // first event past the wheel's reach
    default: return kHorizon * rng.uniform_int(1, 4);  // deep overflow
  }
}

// Trace entries are (tag, value) pairs; any divergence in firing order,
// cancel results, clock values or counters shows up as a trace mismatch.
enum Tag : int {
  kFire = 1,
  kFireAt,
  kCancelResult,
  kStepResult,
  kNow,
  kPending,
  kExecuted,
};
using Trace = std::vector<std::pair<int, long long>>;

std::vector<ScriptOp> make_script(Rng& rng, int n_ops) {
  std::vector<ScriptOp> script;
  script.reserve(static_cast<std::size_t>(n_ops));
  for (int i = 0; i < n_ops; ++i) {
    // Occasionally emit a dense churn block: schedules, cancels and
    // reschedules all pinned to one instant (often a bucket boundary) —
    // the worst case for same-timestamp FIFO bookkeeping.
    if (rng.uniform_int(0, 39) == 0) {
      const TimePs d = rng.uniform_int(0, 1) == 0 ? boundary_delay(rng)
                                                  : rng.uniform_int(0, 3) * 100;
      const auto burst = rng.uniform_int(6, 14);
      for (std::int64_t b = 0; b < burst && i < n_ops; ++b, ++i) {
        ScriptOp s;
        const auto r = rng.uniform_int(0, 9);
        if (r <= 4) {
          s.op = Op::kSchedule;
          s.delay = d;
          s.spec.action = Action::kNone;
        } else if (r <= 6) {
          s.op = Op::kCancel;
          s.target_pick =
              static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
        } else {
          s.op = Op::kReschedule;
          s.delay = d;
          s.target_pick =
              static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
        }
        script.push_back(s);
      }
      continue;
    }
    ScriptOp s;
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 40) {
      s.op = Op::kSchedule;
      // Cluster timestamps: a small delay range forces same-timestamp
      // collisions, which is where FIFO tie-breaking lives. A slice of
      // boundary delays lands events on bucket edges and past the horizon.
      s.delay = rng.uniform_int(0, 9) == 0 ? boundary_delay(rng)
                                           : rng.uniform_int(0, 9) * 100;
      const auto a = rng.uniform_int(0, 9);
      if (a <= 4) s.spec.action = Action::kNone;
      else if (a == 5) s.spec.action = Action::kScheduleSameT;
      else if (a <= 7) {
        s.spec.action = Action::kScheduleLater;
        s.spec.param = rng.uniform_int(0, 5) * 100;
      } else if (a == 8) s.spec.action = Action::kCancelDerived;
      else s.spec.action = Action::kRequestStop;
    } else if (roll < 62) {
      s.op = Op::kCancel;
      s.target_pick = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    } else if (roll < 70) {
      s.op = Op::kReschedule;
      s.delay = rng.uniform_int(0, 7) == 0 ? boundary_delay(rng)
                                           : rng.uniform_int(0, 9) * 100;
      s.target_pick = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    } else if (roll < 83) {
      s.op = Op::kStep;
    } else if (roll < 97) {
      s.op = Op::kRunUntil;
      // Mostly short horizons; sometimes a drain that crosses bucket
      // frontiers or reaches the far-future events in one jump.
      s.delay = rng.uniform_int(0, 7) == 0 ? boundary_delay(rng) * 2
                                           : rng.uniform_int(0, 12) * 100;
    } else {
      s.op = Op::kRunAll;
    }
    script.push_back(s);
  }
  return script;
}

// --- Interpreter over the real engine --------------------------------------

class RealHarness {
 public:
  Trace run(const std::vector<ScriptOp>& script) {
    for (const ScriptOp& s : script) apply(s);
    return trace_;
  }

 private:
  void apply(const ScriptOp& s) {
    switch (s.op) {
      case Op::kSchedule:
        schedule(sched_.now() + s.delay, s.spec);
        break;
      case Op::kCancel:
        if (!ids_.empty()) {
          const std::size_t t = s.target_pick % ids_.size();
          trace_.push_back({kCancelResult, sched_.cancel(ids_[t]) ? 1 : 0});
        }
        break;
      case Op::kReschedule:
        if (!ids_.empty()) {
          const std::size_t t = s.target_pick % ids_.size();
          const EventId moved =
              sched_.reschedule(ids_[t], sched_.now() + s.delay);
          trace_.push_back({kCancelResult, moved.valid() ? 1 : 0});
          if (moved.valid()) ids_[t] = moved;
        }
        break;
      case Op::kStep:
        trace_.push_back({kStepResult, sched_.step() ? 1 : 0});
        break;
      case Op::kRunUntil:
        sched_.run_until(sched_.now() + s.delay);
        break;
      case Op::kRunAll:
        sched_.run_all();
        break;
    }
    trace_.push_back({kNow, static_cast<long long>(sched_.now())});
    trace_.push_back({kPending, static_cast<long long>(sched_.pending_events())});
    trace_.push_back({kExecuted, static_cast<long long>(sched_.executed_events())});
  }

  void schedule(TimePs t, ScheduledSpec spec) {
    const std::uint64_t serial = ids_.size();
    specs_.push_back(spec);
    ids_.push_back(sched_.schedule_at(t, [this, serial] { on_fire(serial); }));
  }

  void on_fire(std::uint64_t serial) {
    trace_.push_back({kFire, static_cast<long long>(serial)});
    trace_.push_back({kFireAt, static_cast<long long>(sched_.now())});
    const ScheduledSpec spec = specs_[serial];
    switch (spec.action) {
      case Action::kNone:
        break;
      case Action::kScheduleSameT:
        schedule(sched_.now(), {Action::kNone, 0});
        break;
      case Action::kScheduleLater:
        schedule(sched_.now() + spec.param, {Action::kNone, 0});
        break;
      case Action::kCancelDerived: {
        const std::size_t t =
            static_cast<std::size_t>((serial * 7 + 3) % ids_.size());
        trace_.push_back({kCancelResult, sched_.cancel(ids_[t]) ? 1 : 0});
        break;
      }
      case Action::kRequestStop:
        sched_.request_stop();
        break;
    }
  }

  Scheduler sched_;
  std::vector<EventId> ids_;
  std::vector<ScheduledSpec> specs_;
  Trace trace_;
};

// --- Reference model: naive sorted-vector implementation --------------------

class ModelHarness {
 public:
  Trace run(const std::vector<ScriptOp>& script) {
    for (const ScriptOp& s : script) apply(s);
    return trace_;
  }

 private:
  struct Ev {
    TimePs t;
    std::uint64_t serial;  // identity (cancel target, trace tag)
    std::uint64_t order;   // FIFO tie-break; bumped by reschedule
  };

  void apply(const ScriptOp& s) {
    switch (s.op) {
      case Op::kSchedule:
        schedule(now_ + s.delay, s.spec);
        break;
      case Op::kCancel:
        if (!specs_.empty()) {
          const std::uint64_t t = s.target_pick % specs_.size();
          trace_.push_back({kCancelResult, cancel(t) ? 1 : 0});
        }
        break;
      case Op::kReschedule:
        if (!specs_.empty()) {
          const std::uint64_t t = s.target_pick % specs_.size();
          trace_.push_back({kCancelResult, reschedule(t, now_ + s.delay) ? 1 : 0});
        }
        break;
      case Op::kStep:
        trace_.push_back({kStepResult, step() ? 1 : 0});
        break;
      case Op::kRunUntil:
        run_until(now_ + s.delay);
        break;
      case Op::kRunAll:
        run_all();
        break;
    }
    trace_.push_back({kNow, static_cast<long long>(now_)});
    trace_.push_back({kPending, static_cast<long long>(pending_.size())});
    trace_.push_back({kExecuted, static_cast<long long>(executed_)});
  }

  void schedule(TimePs t, ScheduledSpec spec) {
    if (t < now_) t = now_;  // documented clamp
    const std::uint64_t serial = specs_.size();
    specs_.push_back(spec);
    pending_.push_back(Ev{t, serial, next_order_++});
  }

  bool cancel(std::uint64_t serial) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].serial == serial) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  // Documented reschedule semantics: observably cancel + schedule at `t`,
  // i.e. the moved event goes behind existing same-timestamp events
  // (fresh FIFO order), and moving a fired/cancelled event fails.
  bool reschedule(std::uint64_t serial, TimePs t) {
    for (Ev& ev : pending_) {
      if (ev.serial == serial) {
        ev.t = t < now_ ? now_ : t;
        ev.order = next_order_++;
        return true;
      }
    }
    return false;
  }

  // Index of the earliest (t, order) pending event, or npos.
  std::size_t min_index() const {
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (best == static_cast<std::size_t>(-1) ||
          pending_[i].t < pending_[best].t ||
          (pending_[i].t == pending_[best].t &&
           pending_[i].order < pending_[best].order))
        best = i;
    }
    return best;
  }

  bool step() {
    const std::size_t i = min_index();
    if (i == static_cast<std::size_t>(-1)) return false;
    fire(i);
    return true;
  }

  void run_until(TimePs t_end) {
    stop_ = false;
    while (!stop_) {
      const std::size_t i = min_index();
      if (i == static_cast<std::size_t>(-1) || pending_[i].t > t_end) break;
      fire(i);
    }
    if (now_ < t_end && !stop_) now_ = t_end;
  }

  void run_all() {
    stop_ = false;
    while (!stop_) {
      const std::size_t i = min_index();
      if (i == static_cast<std::size_t>(-1)) break;
      fire(i);
    }
  }

  void fire(std::size_t i) {
    const Ev ev = pending_[i];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    now_ = ev.t;
    ++executed_;
    trace_.push_back({kFire, static_cast<long long>(ev.serial)});
    trace_.push_back({kFireAt, static_cast<long long>(now_)});
    const ScheduledSpec spec = specs_[ev.serial];
    switch (spec.action) {
      case Action::kNone:
        break;
      case Action::kScheduleSameT:
        schedule(now_, {Action::kNone, 0});
        break;
      case Action::kScheduleLater:
        schedule(now_ + spec.param, {Action::kNone, 0});
        break;
      case Action::kCancelDerived: {
        const std::uint64_t t = (ev.serial * 7 + 3) % specs_.size();
        trace_.push_back({kCancelResult, cancel(t) ? 1 : 0});
        break;
      }
      case Action::kRequestStop:
        stop_ = true;
        break;
    }
  }

  std::vector<Ev> pending_;
  std::vector<ScheduledSpec> specs_;
  std::uint64_t next_order_ = 0;
  TimePs now_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_ = false;
  Trace trace_;
};

class SchedulerVsModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerVsModel, TracesIdentical) {
  Rng rng(GetParam());
  const std::vector<ScriptOp> script = make_script(rng, 400);
  const Trace real = RealHarness().run(script);
  const Trace model = ModelHarness().run(script);
  ASSERT_EQ(real.size(), model.size());
  for (std::size_t i = 0; i < real.size(); ++i)
    ASSERT_EQ(real[i], model[i]) << "trace index " << i << " (seed "
                                 << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerVsModel,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// A drain at the end of every script: whatever state the random ops leave
// behind, running to exhaustion must agree too (catches horizon-dependent
// divergence the random run_until horizons happen to miss).
TEST(SchedulerVsModel, FinalDrainAgrees) {
  for (std::uint64_t seed : {7ull, 99ull, 1234ull}) {
    Rng rng(seed);
    std::vector<ScriptOp> script = make_script(rng, 300);
    script.push_back(ScriptOp{Op::kRunAll, 0, {}, 0});
    script.push_back(ScriptOp{Op::kRunAll, 0, {}, 0});
    const Trace real = RealHarness().run(script);
    const Trace model = ModelHarness().run(script);
    EXPECT_EQ(real, model) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gfc::sim
