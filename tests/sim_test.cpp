// Unit tests for the discrete-event engine: clock math, scheduler ordering,
// cancellation, determinism, RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gfc::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(us(1), 1'000'000);
  EXPECT_EQ(ms(1), 1'000 * us(1));
  EXPECT_EQ(seconds(1), 1'000 * ms(1));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_us(us(7.25)), 7.25);
}

TEST(Time, TxTimeExactAtCommonRates) {
  // 1500 B at 10 Gb/s = 1.2 us.
  EXPECT_EQ(tx_time(gbps(10), 1500), us(1.2));
  // one byte at 100 Gb/s = 80 ps exactly.
  EXPECT_EQ(tx_time(gbps(100), 1), 80);
  // 64 B control frame at 40 Gb/s = 12.8 ns.
  EXPECT_EQ(tx_time(gbps(40), 64), static_cast<TimePs>(12.8 * kPsPerNs));
}

TEST(Time, TxTimeRoundsUpNeverFaster) {
  const Rate r = bps(3);  // pathological rate
  const TimePs t = tx_time(r, 1);
  // 8 bits at 3 bps = 2.666... s; must round up to the next picosecond.
  EXPECT_GE(t, seconds(8.0 / 3.0));
  EXPECT_LE(t - seconds(8.0 / 3.0), 1);
}

TEST(Time, ZeroRateNeverTransmits) {
  EXPECT_EQ(tx_time(Rate{0}, 100), kTimeNever);
}

TEST(Time, RateBytesIn) {
  EXPECT_EQ(gbps(10).bytes_in(us(1)), 1250);
  EXPECT_EQ(gbps(10).bytes_in(0), 0);
}

TEST(Time, RateScaling) {
  EXPECT_EQ((gbps(10) / 2.0).bps, gbps(5).bps);
  EXPECT_EQ((gbps(10) * 0.5).bps, gbps(5).bps);
  EXPECT_LT(kbps(8), mbps(1));
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(us(1.5)), "1.500us");
  EXPECT_EQ(format_rate(gbps(5)), "5.000Gbps");
  EXPECT_EQ(format_time(kTimeNever), "never");
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(us(3), [&] { order.push_back(3); });
  sched.schedule_at(us(1), [&] { order.push_back(1); });
  sched.schedule_at(us(2), [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), us(3));
}

TEST(Scheduler, FifoAtSameTimestamp) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sched.schedule_at(us(5), [&order, i] { order.push_back(i); });
  sched.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, RunUntilIncludesBoundaryAndAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(10), [&] { ++fired; });
  sched.schedule_at(us(11), [&] { ++fired; });
  sched.run_until(us(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), us(10));
  sched.run_until(us(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), us(20));  // clock advances to the horizon
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.schedule_at(us(1), [&] { ++fired; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double-cancel is a no-op
  sched.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
  EXPECT_FALSE(sched.cancel(EventId{12345}));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule_in(us(1), recurse);
  };
  sched.schedule_in(us(1), recurse);
  sched.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now(), us(5));
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(1), [&] { ++fired; });
  sched.schedule_at(us(2), [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, StepSkipsCancelled) {
  Scheduler sched;
  int fired = 0;
  const EventId a = sched.schedule_at(us(1), [&] { ++fired; });
  sched.schedule_at(us(2), [&] { fired += 10; });
  sched.cancel(a);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 10);
}

TEST(Scheduler, RequestStopHaltsRun) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(1), [&] {
    ++fired;
    sched.request_stop();
  });
  sched.schedule_at(us(2), [&] { ++fired; });
  sched.run_until(us(10));
  EXPECT_EQ(fired, 1);
  sched.run_until(us(10));  // resumes after a stop
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PendingAndExecutedCounts) {
  Scheduler sched;
  const EventId a = sched.schedule_at(us(1), [] {});
  sched.schedule_at(us(2), [] {});
  EXPECT_EQ(sched.pending_events(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.run_all();
  EXPECT_EQ(sched.executed_events(), 1u);
}

// --- Pinned engine semantics -----------------------------------------------
// These tests freeze the observable contract of the scheduler so the engine
// can be rewritten for speed without behavior drift. They were written and
// passing against the pre-rewrite std::function/unordered_set engine and must
// pass unchanged against any successor.

TEST(SchedulerPinned, SameTimestampFifoSurvivesInterleavedCancels) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i)
    ids.push_back(sched.schedule_at(us(1), [&order, i] { order.push_back(i); }));
  // Cancel every third event; the survivors must still fire in schedule order.
  for (int i = 0; i < 16; i += 3) EXPECT_TRUE(sched.cancel(ids[static_cast<size_t>(i)]));
  sched.run_all();
  std::vector<int> expect;
  for (int i = 0; i < 16; ++i)
    if (i % 3 != 0) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(SchedulerPinned, EventScheduledAtCurrentTimestampFiresAfterExistingOnes) {
  // An event scheduled *during* timestamp t at timestamp t gets a higher id
  // than everything already queued at t, so it fires last within t.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(us(1), [&] {
    order.push_back(0);
    sched.schedule_at(us(1), [&] { order.push_back(9); });
  });
  sched.schedule_at(us(1), [&] { order.push_back(1); });
  sched.schedule_at(us(1), [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
  EXPECT_EQ(sched.now(), us(1));
}

TEST(SchedulerPinned, CancelOfFiredIdReturnsFalse) {
  Scheduler sched;
  const EventId id = sched.schedule_at(us(1), [] {});
  sched.run_all();
  EXPECT_FALSE(sched.cancel(id));  // already fired: clean no-op
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(SchedulerPinned, CancelOfNeverIssuedOrDefaultIdReturnsFalse) {
  Scheduler sched;
  sched.schedule_at(us(1), [] {});
  EXPECT_FALSE(sched.cancel(EventId{}));            // default/invalid
  EXPECT_FALSE(sched.cancel(EventId{0xDEADBEEF}));  // never issued
  EXPECT_EQ(sched.pending_events(), 1u);
}

TEST(SchedulerPinned, CancelFromInsideOwnCallbackReturnsFalse) {
  Scheduler sched;
  bool cancel_result = true;
  EventId self{};
  self = sched.schedule_at(us(1), [&] { cancel_result = sched.cancel(self); });
  sched.run_all();
  EXPECT_FALSE(cancel_result);  // the event is no longer pending while it runs
}

TEST(SchedulerPinned, PendingEventsAccountingWithCancellations) {
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(sched.schedule_at(us(i + 1), [] {}));
  EXPECT_EQ(sched.pending_events(), 8u);
  EXPECT_TRUE(sched.cancel(ids[2]));
  EXPECT_TRUE(sched.cancel(ids[5]));
  EXPECT_EQ(sched.pending_events(), 6u);
  EXPECT_FALSE(sched.cancel(ids[2]));  // double-cancel does not double-count
  EXPECT_EQ(sched.pending_events(), 6u);
  EXPECT_TRUE(sched.step());  // fires event 0
  EXPECT_EQ(sched.pending_events(), 5u);
  EXPECT_FALSE(sched.cancel(ids[0]));  // fired id: count must not move
  EXPECT_EQ(sched.pending_events(), 5u);
  sched.run_all();
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.executed_events(), 6u);
}

TEST(SchedulerPinned, RunUntilClockSemantics) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(3), [&] { ++fired; });
  // Queue empties before the horizon: clock still advances to t_end.
  sched.run_until(us(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), us(10));
  // Horizon in the past: nothing runs, clock untouched.
  sched.run_until(us(5));
  EXPECT_EQ(sched.now(), us(10));
  // Empty queue: clock advances to the new horizon.
  sched.run_until(us(12));
  EXPECT_EQ(sched.now(), us(12));
}

TEST(SchedulerPinned, RunUntilStoppedLeavesClockAtLastEvent) {
  Scheduler sched;
  sched.schedule_at(us(2), [&] { sched.request_stop(); });
  sched.schedule_at(us(4), [] {});
  sched.run_until(us(10));
  // Stopped mid-run: now() stays at the last executed event, not t_end.
  EXPECT_EQ(sched.now(), us(2));
  EXPECT_EQ(sched.pending_events(), 1u);
}

TEST(SchedulerPinned, RequestStopReturnsAfterCurrentEventOnly) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(us(1), [&] {
    order.push_back(1);
    sched.request_stop();
    // Same-timestamp successor must NOT run in this pass.
  });
  sched.schedule_at(us(1), [&] { order.push_back(2); });
  sched.schedule_at(us(2), [&] { order.push_back(3); });
  sched.run_until(us(10));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sched.pending_events(), 2u);
  sched.run_all();  // a fresh run clears the stop flag and drains the rest
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerPinned, RequestStopHaltsRunAll) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(1), [&] {
    ++fired;
    sched.request_stop();
  });
  sched.schedule_at(us(2), [&] { ++fired; });
  sched.run_all();
  EXPECT_EQ(fired, 1);
  sched.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerPinned, ScheduleInThePastClampsToNow) {
  Scheduler sched;
  sched.schedule_at(us(5), [] {});
  sched.run_until(us(5));
  ASSERT_EQ(sched.now(), us(5));
  std::vector<int> order;
  sched.schedule_at(us(1), [&] { order.push_back(1); });  // past: clamps to 5us
  sched.schedule_at(us(5), [&] { order.push_back(2); });
  sched.schedule_at(us(6), [&] { order.push_back(3); });
  sched.run_all();
  // The clamped event keeps its schedule-order position at now().
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), us(6));
}

TEST(SchedulerPinned, ScheduleInPastFromCallbackFiresSameTimestamp) {
  Scheduler sched;
  std::vector<TimePs> stamps;
  sched.schedule_at(us(4), [&] {
    // delay "before now" from inside a callback clamps to the current time.
    sched.schedule_at(us(1), [&] { stamps.push_back(sched.now()); });
  });
  sched.run_all();
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0], us(4));
}

TEST(SchedulerPinned, StepReturnsFalseWhenOnlyCancelledEventsRemain) {
  Scheduler sched;
  const EventId a = sched.schedule_at(us(1), [] {});
  const EventId b = sched.schedule_at(us(2), [] {});
  sched.cancel(a);
  sched.cancel(b);
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.executed_events(), 0u);
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(SchedulerPinned, ExecutedEventsCountsOnlyRealFirings) {
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(sched.schedule_at(us(1), [] {}));
  for (int i = 0; i < 10; i += 2) sched.cancel(ids[static_cast<size_t>(i)]);
  sched.run_all();
  EXPECT_EQ(sched.executed_events(), 5u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(2);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(3);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace gfc::sim
