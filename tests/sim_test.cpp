// Unit tests for the discrete-event engine: clock math, scheduler ordering,
// cancellation, determinism, RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gfc::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(us(1), 1'000'000);
  EXPECT_EQ(ms(1), 1'000 * us(1));
  EXPECT_EQ(seconds(1), 1'000 * ms(1));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_us(us(7.25)), 7.25);
}

TEST(Time, TxTimeExactAtCommonRates) {
  // 1500 B at 10 Gb/s = 1.2 us.
  EXPECT_EQ(tx_time(gbps(10), 1500), us(1.2));
  // one byte at 100 Gb/s = 80 ps exactly.
  EXPECT_EQ(tx_time(gbps(100), 1), 80);
  // 64 B control frame at 40 Gb/s = 12.8 ns.
  EXPECT_EQ(tx_time(gbps(40), 64), static_cast<TimePs>(12.8 * kPsPerNs));
}

TEST(Time, TxTimeRoundsUpNeverFaster) {
  const Rate r = bps(3);  // pathological rate
  const TimePs t = tx_time(r, 1);
  // 8 bits at 3 bps = 2.666... s; must round up to the next picosecond.
  EXPECT_GE(t, seconds(8.0 / 3.0));
  EXPECT_LE(t - seconds(8.0 / 3.0), 1);
}

TEST(Time, ZeroRateNeverTransmits) {
  EXPECT_EQ(tx_time(Rate{0}, 100), kTimeNever);
}

TEST(Time, RateBytesIn) {
  EXPECT_EQ(gbps(10).bytes_in(us(1)), 1250);
  EXPECT_EQ(gbps(10).bytes_in(0), 0);
}

TEST(Time, RateScaling) {
  EXPECT_EQ((gbps(10) / 2.0).bps, gbps(5).bps);
  EXPECT_EQ((gbps(10) * 0.5).bps, gbps(5).bps);
  EXPECT_LT(kbps(8), mbps(1));
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(us(1.5)), "1.500us");
  EXPECT_EQ(format_rate(gbps(5)), "5.000Gbps");
  EXPECT_EQ(format_time(kTimeNever), "never");
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(us(3), [&] { order.push_back(3); });
  sched.schedule_at(us(1), [&] { order.push_back(1); });
  sched.schedule_at(us(2), [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), us(3));
}

TEST(Scheduler, FifoAtSameTimestamp) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sched.schedule_at(us(5), [&order, i] { order.push_back(i); });
  sched.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, RunUntilIncludesBoundaryAndAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(10), [&] { ++fired; });
  sched.schedule_at(us(11), [&] { ++fired; });
  sched.run_until(us(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), us(10));
  sched.run_until(us(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), us(20));  // clock advances to the horizon
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.schedule_at(us(1), [&] { ++fired; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double-cancel is a no-op
  sched.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
  EXPECT_FALSE(sched.cancel(EventId{12345}));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule_in(us(1), recurse);
  };
  sched.schedule_in(us(1), recurse);
  sched.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now(), us(5));
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(1), [&] { ++fired; });
  sched.schedule_at(us(2), [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, StepSkipsCancelled) {
  Scheduler sched;
  int fired = 0;
  const EventId a = sched.schedule_at(us(1), [&] { ++fired; });
  sched.schedule_at(us(2), [&] { fired += 10; });
  sched.cancel(a);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 10);
}

TEST(Scheduler, RequestStopHaltsRun) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(us(1), [&] {
    ++fired;
    sched.request_stop();
  });
  sched.schedule_at(us(2), [&] { ++fired; });
  sched.run_until(us(10));
  EXPECT_EQ(fired, 1);
  sched.run_until(us(10));  // resumes after a stop
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PendingAndExecutedCounts) {
  Scheduler sched;
  const EventId a = sched.schedule_at(us(1), [] {});
  sched.schedule_at(us(2), [] {});
  EXPECT_EQ(sched.pending_events(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.run_all();
  EXPECT_EQ(sched.executed_events(), 1u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(2);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(3);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace gfc::sim
