// Unit tests for measurement utilities: throughput, FCT/slowdown, CDF,
// feedback bandwidth, deadlock detection.
#include <gtest/gtest.h>

#include <algorithm>

#include "flowctl/pfc.hpp"
#include "runner/scenarios.hpp"
#include "stats/cdf.hpp"
#include "stats/deadlock.hpp"
#include "stats/feedback.hpp"
#include "stats/flow_stats.hpp"
#include "stats/probe.hpp"
#include "stats/throughput.hpp"

namespace gfc::stats {
namespace {

using sim::gbps;
using sim::ms;
using sim::us;

TEST(Cdf, QuantilesAndMoments) {
  CdfBuilder cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_EQ(cdf.count(), 100u);
  EXPECT_DOUBLE_EQ(cdf.mean(), 50.5);
  EXPECT_DOUBLE_EQ(cdf.min(), 1);
  EXPECT_DOUBLE_EQ(cdf.max(), 100);
  EXPECT_NEAR(cdf.quantile(0.5), 50, 1);
  EXPECT_NEAR(cdf.quantile(0.99), 99, 1);
  const auto pts = cdf.points(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_LE(pts.front().first, pts.back().first);
}

TEST(TimeSeries, MaxSeedsFromFirstSample) {
  TimeSeries ts;
  ts.add(0, -5.0);
  ts.add(us(1), -2.5);
  ts.add(us(2), -9.0);
  // Regression: max() used to start its accumulator at 0, so an
  // all-negative series wrongly reported 0.
  EXPECT_DOUBLE_EQ(ts.max(), -2.5);
  EXPECT_DOUBLE_EQ(ts.min(), -9.0);
}

TEST(TimeSeries, MinMaxMixedAndEmpty) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.max(), 0.0);
  EXPECT_DOUBLE_EQ(ts.min(), 0.0);
  ts.add(0, 3.0);
  EXPECT_DOUBLE_EQ(ts.max(), 3.0);
  EXPECT_DOUBLE_EQ(ts.min(), 3.0);
  ts.add(us(1), -1.0);
  ts.add(us(2), 7.0);
  EXPECT_DOUBLE_EQ(ts.max(), 7.0);
  EXPECT_DOUBLE_EQ(ts.min(), -1.0);
}

TEST(PeriodicProbe, StopFromOutsideCancelsFutureFires) {
  sim::Scheduler sched;
  int fires = 0;
  PeriodicProbe probe(sched, us(10), [&](sim::TimePs) { ++fires; });
  sched.run_until(us(35));
  EXPECT_EQ(fires, 3);
  probe.stop();
  sched.run_until(us(100));
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(probe.stopped());
}

TEST(PeriodicProbe, StopFromInsideOwnCallbackTakesEffect) {
  // Regression: stop() from inside the callback used to be a no-op — the
  // timer event had already fired (cancel found nothing) and arm() re-armed
  // unconditionally, so the probe kept firing forever.
  sim::Scheduler sched;
  int fires = 0;
  PeriodicProbe* self = nullptr;
  PeriodicProbe probe(sched, us(10), [&](sim::TimePs) {
    if (++fires == 3) self->stop();
  });
  self = &probe;
  sched.run_until(us(200));
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(probe.stopped());
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(Cdf, EmptyIsSafe) {
  CdfBuilder cdf;
  EXPECT_EQ(cdf.mean(), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.points(5).empty());
}

TEST(Throughput, AggregateMatchesDeliveredBytes) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::none();
  auto s = runner::make_incast(cfg, 1);
  net::Network& net = s.fabric->net();
  ThroughputSampler sampler(net, us(100));
  net.run_until(ms(2));
  EXPECT_EQ(sampler.total_bytes(), net.counters().data_bytes_delivered);
  EXPECT_NEAR(sampler.average_gbps(0, 0, ms(2)), 10.0, 0.5);
  const auto series = sampler.series_gbps();
  EXPECT_GT(series.size(), 15u);
  EXPECT_NEAR(series[10], 10.0, 0.5);
}

TEST(Throughput, PerFlowKeying) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                   cfg.switch_buffer, cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  ThroughputSampler sampler(net, us(100), ThroughputSampler::Key::kPerFlow);
  net.run_until(ms(5));
  // Two competing flows share the 10G bottleneck roughly equally.
  const double f0 = sampler.average_gbps(s.flows[0], ms(3), ms(5));
  const double f1 = sampler.average_gbps(s.flows[1], ms(3), ms(5));
  EXPECT_NEAR(f0, 5.0, 0.8);
  EXPECT_NEAR(f1, 5.0, 0.8);
}

TEST(FlowStatsTest, SlowdownOfUncontendedFlowIsNearOne) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::none();
  // A single tiny bootstrap flow, then the measured flow alone on an idle
  // network.
  auto s = runner::make_incast(cfg, 1, 1'500);
  net::Network& net = s.fabric->net();
  FlowStats stats(net, [&](const net::Flow& flow) {
    return FlowStats::default_ideal_fct(flow, cfg.link.rate, 1,
                                        cfg.link.prop_delay, cfg.link.mtu);
  });
  net.create_flow(s.info.senders[0], s.info.receiver, 0, 150'000, ms(1));
  net.run_until(ms(5));
  ASSERT_EQ(stats.count(), 2u);
  EXPECT_NEAR(stats.records()[1].slowdown, 1.0, 0.1);
  EXPECT_GT(stats.mean_fct_us(), 0.0);
}

TEST(FlowStatsTest, ContendedFlowsSlowDown) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 4, 500'000);  // 4 x 500 KB into one host
  net::Network& net = s.fabric->net();
  FlowStats stats(net, [&](const net::Flow& flow) {
    return FlowStats::default_ideal_fct(flow, cfg.link.rate, 1,
                                        cfg.link.prop_delay, cfg.link.mtu);
  });
  net.run_until(ms(10));
  ASSERT_EQ(stats.count(), 4u);
  // 4:1 incast: mean slowdown near 4x (the last finisher saw ~4x).
  EXPECT_GT(stats.mean_slowdown(), 1.8);
  EXPECT_GT(stats.slowdown_quantile(0.99), 3.0);
}

TEST(Feedback, QuietWithoutCongestion) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                   cfg.switch_buffer, cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 1);
  net::Network& net = s.fabric->net();
  FeedbackBandwidthMonitor monitor(net);
  net.run_until(ms(5));
  EXPECT_GT(monitor.samples().count(), 0u);
  // One uncongested flow: no stage crossings, no feedback.
  EXPECT_LT(monitor.max_fraction(), 1e-4);
}

TEST(Feedback, BoundedUnderCongestion) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                   cfg.switch_buffer, cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 2);
  net::Network& net = s.fabric->net();
  FeedbackBandwidthMonitor monitor(net);
  net.run_until(ms(20));
  // Paper Fig 19: well under 0.5 % of link bandwidth even at the maximum.
  EXPECT_LT(monitor.max_fraction(), 0.005);
  EXPECT_LT(monitor.mean_fraction(), 0.004);
}

TEST(Deadlock, CleanNetworkReportsNothing) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_incast(cfg, 2);
  DeadlockDetector detector(s.fabric->net());
  s.fabric->net().run_until(ms(10));
  EXPECT_FALSE(detector.deadlocked());
}

TEST(Deadlock, RingPfcProducesWitnessCycle) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_ring(cfg);
  DeadlockDetector detector(s.fabric->net());
  s.fabric->net().run_until(ms(20));
  ASSERT_TRUE(detector.deadlocked());
  // The witness must be a cycle over the three inter-switch egress ports.
  EXPECT_GE(detector.cycle().size(), 3u);
  for (const auto& [node, port] : detector.cycle())
    EXPECT_TRUE(s.fabric->net().node(node).is_switch());
  EXPECT_GT(detector.detected_at(), 0);
}

TEST(Deadlock, TwoSwitchRoutingLoopWitnessIsExact) {
  // DCFIT-style minimal case: a transient routing loop bounces packets for
  // H2 between S0 and S1 until both directions of the inter-switch link
  // pause each other. The witness must be exactly the 2-cycle over the two
  // inter-switch egress ports — no host ports, nothing else.
  net::Network net;
  const net::NodeId h0 = net.add_host("H0").id();
  const net::NodeId h2 = net.add_host("H2").id();
  const net::NodeId s0 = net.add_switch("S0", 100'000).id();
  const net::NodeId s1 = net.add_switch("S1", 100'000).id();
  net.connect(h0, s0, sim::gbps(10), us(1));  // S0: port 0
  net.connect(h2, s0, sim::gbps(10), us(1));  // S0: port 1
  net.connect(s0, s1, sim::gbps(10), us(1));  // S0: port 2 / S1: port 0
  net.sw(s0)->set_route(h0, {0});
  net.sw(s0)->set_route(h2, {2});  // mis-routed: bounce to S1...
  net.sw(s1)->set_route(h2, {0});  // ...and straight back.
  for (net::NodeId id : {h0, h2, s0, s1})
    net.node(id).set_fc(std::make_unique<flowctl::PfcModule>(
        flowctl::PfcConfig{80'000, 77'000}));

  net.create_flow(h0, h2, 0, net::Flow::kUnbounded, 0);
  net.run_until(ms(5));

  DeadlockDetector detector(net);
  std::vector<std::pair<net::NodeId, int>> cycle;
  ASSERT_TRUE(detector.cycle_now(&cycle));
  std::sort(cycle.begin(), cycle.end());
  const std::vector<std::pair<net::NodeId, int>> want = {{s0, 2}, {s1, 0}};
  EXPECT_EQ(cycle, want);
}

TEST(Deadlock, FourSwitchRingWitnessIsTheClockwiseCycle) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_ring(cfg, 4, 2);
  DeadlockDetector detector(s.fabric->net());
  s.fabric->net().run_until(ms(20));
  ASSERT_TRUE(detector.deadlocked());

  // Every flow runs clockwise, so the witness must be exactly the four
  // clockwise inter-switch egress ports S_i -> S_{i+1}.
  std::vector<std::pair<net::NodeId, int>> want;
  for (int i = 0; i < 4; ++i) {
    const auto from = s.info.switches[static_cast<std::size_t>(i)];
    const auto to = s.info.switches[static_cast<std::size_t>((i + 1) % 4)];
    want.emplace_back(from, s.fabric->port_to(from, to));
  }
  std::sort(want.begin(), want.end());
  auto cycle = detector.cycle();
  std::sort(cycle.begin(), cycle.end());
  EXPECT_EQ(cycle, want);
}

TEST(Deadlock, StopOnDetectHaltsEarly) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_ring(cfg);
  DeadlockOptions dl_opts;
  dl_opts.stop_on_detect = true;
  DeadlockDetector detector(s.fabric->net(), dl_opts);
  s.fabric->net().run_until(ms(100));
  ASSERT_TRUE(detector.deadlocked());
  EXPECT_LT(s.fabric->net().sched().now(), ms(50));
}

}  // namespace
}  // namespace gfc::stats
