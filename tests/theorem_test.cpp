// Empirical validation of the paper's parameter bounds: respecting them
// keeps the network lossless (sufficiency); grossly violating them makes
// buffers overflow under congestion (the bounds are not vacuous).
// Plus multi-priority isolation (Sec 7) and feedback-latency sweeps.
#include <gtest/gtest.h>

#include <random>

#include "core/gfc_buffer.hpp"
#include "runner/scenarios.hpp"
#include "sim/scheduler.hpp"
#include "stats/throughput.hpp"

namespace gfc::runner {
namespace {

using sim::gbps;
using sim::ms;
using sim::us;

// --- Theorem sufficiency/necessity on the 2-to-1 incast ------------------
class TauSweep : public ::testing::TestWithParam<int> {};

TEST_P(TauSweep, DerivedGfcParamsStayLossless) {
  // Sweep the feedback processing latency; derive() consumes the resulting
  // tau. Sufficiency: zero violations and no deadlock, every time.
  ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  cfg.control_delay = us(GetParam());
  for (const FcKind kind :
       {FcKind::kGfcBuffer, FcKind::kGfcTime, FcKind::kGfcConceptual}) {
    cfg.fc = FcSetup::derive(kind, cfg.switch_buffer, cfg.link.rate, cfg.tau());
    auto s = make_incast(cfg, 2);
    stats::DeadlockDetector det(s.fabric->net());
    s.fabric->net().run_until(ms(8));
    EXPECT_EQ(s.fabric->net().counters().lossless_violations, 0u)
        << fc_name(kind) << " t_r=" << GetParam() << "us";
    EXPECT_FALSE(det.deadlocked());
  }
}

INSTANTIATE_TEST_SUITE_P(Latencies, TauSweep, ::testing::Values(1, 5, 15, 30),
                         [](const auto& info) {
                           return "tr_" + std::to_string(info.param) + "us";
                         });

TEST(TheoremNecessity, ViolatingB1BoundOverflowsTheBuffer) {
  // Put B_1 far above the Theorem/Eq-5 bound with a large tau: the first
  // feedback arrives too late and the ingress buffer overflows. This shows
  // the 2*C*tau constraint is load-bearing, not decorative.
  ScenarioConfig cfg;
  cfg.switch_buffer = 100'000;
  cfg.control_delay = us(60);  // tau ~= 64 us; 2*C*tau ~= 160 KB > buffer
  cfg.fc = FcSetup::gfc_buffer(99'000, 100'000);  // B1 ~ B_m: no headroom
  auto s = make_incast(cfg, 2);
  s.fabric->net().run_until(ms(5));
  EXPECT_GT(s.fabric->net().counters().lossless_violations, 0u);
}

TEST(TheoremNecessity, PfcWithoutHeadroomOverflows) {
  ScenarioConfig cfg;
  cfg.switch_buffer = 100'000;
  cfg.control_delay = us(60);
  cfg.fc = FcSetup::pfc(99'000, 96'000);  // 1 KB headroom << C*tau
  auto s = make_incast(cfg, 2);
  s.fabric->net().run_until(ms(5));
  EXPECT_GT(s.fabric->net().counters().lossless_violations, 0u);
}

TEST(TheoremSufficiency, B1ExactlyAtBoundHolds) {
  ScenarioConfig cfg;
  cfg.switch_buffer = 300'000;
  const sim::TimePs tau = cfg.tau();
  // Paper-exact bound, no extra engineering margin: B1 = Bm - 2*C*tau with
  // B_m at the physical buffer. The fluid theorem plus one-packet grain.
  const std::int64_t b1 =
      core::b1_bound_buffer(cfg.switch_buffer - 2 * cfg.link.mtu,
                            cfg.link.rate, tau);
  cfg.fc = FcSetup::gfc_buffer(b1, cfg.switch_buffer - 2 * cfg.link.mtu);
  auto s = make_incast(cfg, 2);
  s.fabric->net().run_until(ms(8));
  EXPECT_EQ(s.fabric->net().counters().lossless_violations, 0u);
}

// --- Multi-priority isolation (Sec 7) -------------------------------------
TEST(MultiPriority, PfcPausesOnlyTheCongestedClass) {
  // Priority 0 suffers a 2-to-1 incast; priority 5 runs a single
  // uncongested flow between the same hosts. PFC pauses class 0 at the
  // hosts; class 5 keeps its share of the sender NIC.
  ScenarioConfig cfg;
  cfg.switch_buffer = 150'000;
  cfg.fc = FcSetup::derive(FcKind::kPfc, cfg.switch_buffer, cfg.link.rate,
                           cfg.tau());
  topo::Topology topo;
  auto info = topo::build_dumbbell(topo, 2);
  Fabric fabric(topo, cfg);
  fabric.install_routing(topo, topo::compute_shortest_paths(topo));
  net::Network& net = fabric.net();
  net.create_flow(info.senders[0], info.receiver, 0, net::Flow::kUnbounded, 0);
  net.create_flow(info.senders[1], info.receiver, 0, net::Flow::kUnbounded, 0);
  net.create_flow(info.senders[0], info.receiver, 5, net::Flow::kUnbounded, 0);
  stats::ThroughputSampler tp(net, us(100), stats::ThroughputSampler::Key::kPerFlow);
  net.run_until(ms(10));
  EXPECT_EQ(net.counters().lossless_violations, 0u);
  // All three flows share the 10G receiver link; the point is that class 5
  // is never *paused* (it flows continuously at its arbitated share).
  const double p5 = tp.average_gbps(2, ms(5), ms(10));
  EXPECT_GT(p5, 2.0);
}

TEST(MultiPriority, GfcRatesClassesIndependently) {
  ScenarioConfig cfg;
  cfg.switch_buffer = 150'000;
  cfg.arch = net::SwitchArch::kCioqRoundRobin;
  cfg.fc = FcSetup::derive(FcKind::kGfcBuffer, cfg.switch_buffer,
                           cfg.link.rate, cfg.tau());
  topo::Topology topo;
  auto info = topo::build_dumbbell(topo, 2);
  Fabric fabric(topo, cfg);
  fabric.install_routing(topo, topo::compute_shortest_paths(topo));
  net::Network& net = fabric.net();
  net.create_flow(info.senders[0], info.receiver, 0, net::Flow::kUnbounded, 0);
  net.create_flow(info.senders[1], info.receiver, 0, net::Flow::kUnbounded, 0);
  net.create_flow(info.senders[0], info.receiver, 5, net::Flow::kUnbounded, 0);
  net.run_until(ms(10));
  EXPECT_EQ(net.counters().lossless_violations, 0u);
  // Class 0 on sender 0 is rate-limited below line rate (stage >= 1);
  // class 5's limiter state is independent of class 0's.
  auto* fc = dynamic_cast<core::GfcBufferModule*>(
      net.host(info.senders[0])->fc());
  ASSERT_NE(fc, nullptr);
  const sim::Rate r0 = fc->programmed_rate(0, 0);
  const sim::Rate r5 = fc->programmed_rate(0, 5);
  EXPECT_LT(r0, gbps(10));
  EXPECT_GE(r5, r0);  // class 5 is never throttled below the congested class
}

// --- Scheduler stress ------------------------------------------------------
TEST(SchedulerStress, RandomScheduleCancelOrdering) {
  sim::Scheduler sched;
  std::mt19937_64 rng(12345);
  std::vector<std::pair<sim::TimePs, int>> fired;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 50'000; ++i) {
    const auto t = static_cast<sim::TimePs>(rng() % 1'000'000);
    ids.push_back(sched.schedule_at(t, [&fired, t, i] {
      fired.push_back({t, i});
    }));
  }
  // Cancel a third of them.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (sched.cancel(ids[i])) ++cancelled;
  }
  sched.run_all();
  EXPECT_EQ(fired.size() + cancelled, ids.size());
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1].first, fired[i].first);  // time ordering
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(SchedulerStress, HeavyRescheduleInsideCallbacks) {
  sim::Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10'000) sched.schedule_in(100, chain);
  };
  sched.schedule_in(100, chain);
  sched.run_all();
  EXPECT_EQ(count, 10'000);
  EXPECT_EQ(sched.now(), 100 * 10'000);
}

}  // namespace
}  // namespace gfc::runner
