// Unit tests for topologies, routing, CBD analysis and scenario generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topo/scenario_gen.hpp"

namespace gfc::topo {
namespace {

TEST(Topology, RingShape) {
  Topology t;
  const RingInfo info = build_ring(t, 3);
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_EQ(t.link_count(), 6u);  // 3 host links + 3 ring links
  EXPECT_EQ(t.hosts().size(), 3u);
  EXPECT_EQ(t.switches().size(), 3u);
  EXPECT_EQ(t.switch_links().size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(t.rack_of(info.hosts[static_cast<std::size_t>(i)]),
              info.switches[static_cast<std::size_t>(i)]);
}

TEST(Topology, FatTreeK4Shape) {
  Topology t;
  const FatTreeInfo ft = build_fattree(t, 4);
  EXPECT_EQ(ft.hosts.size(), 16u);
  EXPECT_EQ(ft.edges.size(), 8u);
  EXPECT_EQ(ft.aggs.size(), 8u);
  EXPECT_EQ(ft.cores.size(), 4u);
  // Links: host-edge 16, edge-agg 4*2*2=16, agg-core 4*2*2=16.
  EXPECT_EQ(t.link_count(), 48u);
  EXPECT_EQ(t.switch_links().size(), 32u);
  // Host ids are pod-major and contiguous: H0..H3 pod 0, H4..H7 pod 1...
  EXPECT_EQ(ft.pod_of_host(ft.hosts[0]), 0);
  EXPECT_EQ(ft.pod_of_host(ft.hosts[4]), 1);
  EXPECT_EQ(ft.pod_of_host(ft.hosts[13]), 3);
  EXPECT_TRUE(t.hosts_connected());
}

TEST(Topology, FatTreeK8Shape) {
  Topology t;
  const FatTreeInfo ft = build_fattree(t, 8);
  EXPECT_EQ(ft.hosts.size(), 128u);
  EXPECT_EQ(ft.edges.size(), 32u);
  EXPECT_EQ(ft.aggs.size(), 32u);
  EXPECT_EQ(ft.cores.size(), 16u);
  EXPECT_TRUE(t.hosts_connected());
}

TEST(Topology, FailRestoreLinks) {
  Topology t;
  build_ring(t, 3);
  const auto sw_links = t.switch_links();
  t.fail_link(sw_links[0]);
  EXPECT_FALSE(t.link(sw_links[0]).up);
  EXPECT_TRUE(t.hosts_connected());  // ring survives one failure
  t.fail_link(sw_links[1]);
  t.fail_link(sw_links[2]);
  EXPECT_FALSE(t.hosts_connected());
  t.restore_all();
  EXPECT_TRUE(t.hosts_connected());
}

TEST(Routing, ShortestPathsOnFatTree) {
  Topology t;
  const FatTreeInfo ft = build_fattree(t, 4);
  const RoutingTable routing = compute_shortest_paths(t);
  // Same-pod different-rack: 2 switch hops (edge-agg-edge), path length 5.
  const auto same_pod = routing.trace(ft.hosts[0], ft.hosts[2], 7);
  EXPECT_EQ(same_pod.size(), 5u);
  // Cross-pod: 4 switch-to-switch hops via a core, path length 7.
  const auto cross_pod = routing.trace(ft.hosts[0], ft.hosts[8], 7);
  EXPECT_EQ(cross_pod.size(), 7u);
  EXPECT_EQ(cross_pod.front(), ft.hosts[0]);
  EXPECT_EQ(cross_pod.back(), ft.hosts[8]);
}

TEST(Routing, EcmpUsesMultiplePaths) {
  Topology t;
  const FatTreeInfo ft = build_fattree(t, 4);
  const RoutingTable routing = compute_shortest_paths(t);
  std::set<std::vector<NodeIndex>> distinct;
  for (std::uint64_t salt = 0; salt < 32; ++salt)
    distinct.insert(routing.trace(ft.hosts[0], ft.hosts[8], salt));
  // k=4 has 4 core paths between pods.
  EXPECT_GE(distinct.size(), 3u);
}

TEST(Routing, TraceMatchesNextHops) {
  Topology t;
  const FatTreeInfo ft = build_fattree(t, 4);
  const RoutingTable routing = compute_shortest_paths(t);
  const auto path = routing.trace(ft.hosts[1], ft.hosts[15], 99);
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const auto& hops = routing.next_hops(path[i], ft.hosts[15]);
    EXPECT_NE(std::find(hops.begin(), hops.end(), path[i + 1]), hops.end());
  }
}

TEST(Routing, UnroutableAfterDisconnection) {
  Topology t;
  const RingInfo info = build_ring(t, 3);
  for (LinkIndex l : t.switch_links()) t.fail_link(l);
  const RoutingTable routing = compute_shortest_paths(t);
  EXPECT_TRUE(routing.trace(info.hosts[0], info.hosts[1], 0).empty());
  EXPECT_FALSE(routing.routable(info.hosts[0], info.hosts[1]));
  // Local rack still reachable.
  EXPECT_TRUE(routing.routable(info.hosts[0], info.hosts[0]) == false ||
              true);  // self-routing is unused; just must not crash
}

TEST(Routing, RingClockwiseIsCyclic) {
  Topology t;
  const RingInfo info = build_ring(t, 3);
  const RoutingTable routing = ring_clockwise_routes(t, info);
  const auto path = routing.trace(info.hosts[0], info.hosts[2], 0);
  // H0 -> S0 -> S1 -> S2 -> H2 (two inter-switch hops, never the short way).
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path[1], info.switches[0]);
  EXPECT_EQ(path[2], info.switches[1]);
  EXPECT_EQ(path[3], info.switches[2]);
}

TEST(Cbd, RingRoutingIsCbdProne) {
  Topology t;
  const RingInfo info = build_ring(t, 3);
  EXPECT_TRUE(cbd_prone(t, ring_clockwise_routes(t, info)));
}

TEST(Cbd, HealthyFatTreeIsCbdFree) {
  // Up-down routing on an intact fat-tree can never create a CBD.
  Topology t;
  build_fattree(t, 4);
  EXPECT_FALSE(cbd_prone(t, compute_shortest_paths(t)));
}

TEST(Cbd, PathDependencies) {
  Topology t;
  const RingInfo info = build_ring(t, 3);
  BufferDependencyGraph g(t);
  // Two paths that chain around the ring close a cycle; one alone doesn't.
  const auto s = [&](int i) { return info.switches[static_cast<std::size_t>(i)]; };
  g.add_path({info.hosts[0], s(0), s(1), s(2), info.hosts[2]});
  EXPECT_FALSE(g.find_cycle().has_cbd);
  g.add_path({info.hosts[1], s(1), s(2), s(0), info.hosts[0]});
  EXPECT_FALSE(g.find_cycle().has_cbd);
  g.add_path({info.hosts[2], s(2), s(0), s(1), info.hosts[1]});
  const CbdResult r = g.find_cycle();
  EXPECT_TRUE(r.has_cbd);
  EXPECT_EQ(r.cycle.size(), 3u);
}

TEST(Cbd, WitnessCycleIsConsistent) {
  Topology t;
  const RingInfo info = build_ring(t, 4);
  BufferDependencyGraph g(t);
  const auto s = [&](int i) { return info.switches[static_cast<std::size_t>(i)]; };
  for (int i = 0; i < 4; ++i)
    g.add_path({info.hosts[static_cast<std::size_t>(i)], s(i), s((i + 1) % 4),
                s((i + 2) % 4), info.hosts[static_cast<std::size_t>((i + 2) % 4)]});
  const CbdResult r = g.find_cycle();
  ASSERT_TRUE(r.has_cbd);
  // Consecutive cycle entries must chain: (a,b) -> (b,c).
  for (std::size_t i = 0; i < r.cycle.size(); ++i)
    EXPECT_EQ(r.cycle[i].second, r.cycle[(i + 1) % r.cycle.size()].first);
}

TEST(ScenarioGen, RandomFailuresKeepHostsConnected) {
  Topology t;
  build_fattree(t, 4);
  sim::Rng rng(5);
  const auto failed = random_failures(t, rng, 0.2);
  EXPECT_TRUE(t.hosts_connected());
  for (LinkIndex l : failed) EXPECT_FALSE(t.link(l).up);
}

TEST(ScenarioGen, ZeroProbabilityFailsNothing) {
  Topology t;
  build_fattree(t, 4);
  sim::Rng rng(5);
  EXPECT_TRUE(random_failures(t, rng, 0.0).empty());
}

TEST(ScenarioGen, Fig11CaseHasQualifyingCbd) {
  Topology t;
  const FatTreeInfo ft = build_fattree(t, 4);
  const auto cases = find_fig11_cases(t, ft, 1);
  ASSERT_FALSE(cases.empty());
  const Fig11Case& c = cases.front();
  EXPECT_EQ(c.failed_links.size(), 3u);
  EXPECT_GE(c.cbd.cycle.size(), 4u);
  // Cycle lives above the edge layer.
  for (const auto& [a, b] : c.cbd.cycle) {
    EXPECT_GE(t.node(a).layer, 2);
    EXPECT_GE(t.node(b).layer, 2);
  }
  // The four paper flows are the endpoints.
  EXPECT_EQ(c.flows[0].first, ft.hosts[0]);
  EXPECT_EQ(c.flows[0].second, ft.hosts[8]);
  EXPECT_EQ(c.flows[3].first, ft.hosts[13]);
  EXPECT_EQ(c.flows[3].second, ft.hosts[5]);
}

TEST(ScenarioGen, CbdStressCoversCycle) {
  Topology t;
  build_fattree(t, 4);
  // Find a prone topology, then cover its cycle.
  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    t.restore_all();
    sim::Rng rng(seed);
    random_failures(t, rng, 0.05);
    const RoutingTable routing = compute_shortest_paths(t);
    BufferDependencyGraph g(t);
    g.add_routing_closure(routing);
    const CbdResult cbd = g.find_cycle();
    if (!cbd.has_cbd) continue;
    const CbdStress stress = build_cbd_stress(t, routing, cbd.cycle, rng);
    if (!stress.covered) continue;
    // The realized stress paths must themselves form a CBD.
    BufferDependencyGraph realized(t);
    for (const auto& f : stress.flows)
      realized.add_path(routing.trace(f.src, f.dst, f.salt));
    EXPECT_TRUE(realized.find_cycle().has_cbd);
    return;
  }
  GTEST_SKIP() << "no coverable CBD-prone case in seed range";
}

}  // namespace
}  // namespace gfc::topo
