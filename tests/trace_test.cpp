// The trace subsystem (src/trace/): ring-buffer semantics, category
// gating, name round-trips, exporter determinism, CSV re-import, and the
// flight-recorder deadlock post-mortem on the paper's PFC ring.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "exp/cli.hpp"
#include "exp/results.hpp"
#include "exp/worker_pool.hpp"
#include "runner/scenarios.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace gfc::trace {
namespace {

TraceEvent ev(sim::TimePs t, EventType type, std::int32_t node = 0,
              std::int16_t port = 0, std::int64_t value = 0) {
  TraceEvent e;
  e.t = t;
  e.type = static_cast<std::uint8_t>(type);
  e.node = node;
  e.port = port;
  e.value = value;
  return e;
}

TEST(TraceBuffer, OverwritesOldestWhenFull) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i)
    buf.push(ev(sim::us(i), EventType::kPortEnqueue, 0, 0, i));
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  ASSERT_EQ(buf.size(), 4u);
  // Chronological access: [0] is the oldest retained event (i = 6).
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf[i].value, static_cast<std::int64_t>(6 + i));
}

TEST(TraceBuffer, PartiallyFilledKeepsPushOrder) {
  TraceBuffer buf(8);
  for (int i = 0; i < 3; ++i)
    buf.push(ev(sim::us(i), EventType::kDrop, i));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 0u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(buf[i].node, static_cast<std::int32_t>(i));
}

TEST(Tracer, CategoryMaskGatesRecording) {
  TraceOptions opts;
  opts.enabled = true;
  opts.categories = kCatPfc;
  opts.capacity = 16;
  Tracer tr(opts);
  tr.record(EventType::kPauseTx, sim::us(1), 0, 0, 0, 1, 0);   // pfc: kept
  tr.record(EventType::kPortEnqueue, sim::us(2), 0, 0, 0, 2, 0);  // port: no
  tr.record(EventType::kCreditRx, sim::us(3), 0, 0, 0, 3, 0);     // credit: no
  tr.record(EventType::kResumeRx, sim::us(4), 0, 0, 0, 4, 0);  // pfc: kept
  ASSERT_EQ(tr.buffer().size(), 2u);
  EXPECT_EQ(tr.buffer()[0].event_type(), EventType::kPauseTx);
  EXPECT_EQ(tr.buffer()[1].event_type(), EventType::kResumeRx);
  EXPECT_TRUE(tr.enabled(kCatPfc));
  EXPECT_FALSE(tr.enabled(kCatPort));
}

TEST(Categories, ParseAndFormatRoundTrip) {
  std::string err;
  EXPECT_EQ(parse_categories("all", &err), kCatAll);
  EXPECT_EQ(parse_categories("pfc", &err), kCatPfc);
  EXPECT_EQ(parse_categories("pfc,port,sched", &err),
            kCatPfc | kCatPort | kCatSched);
  EXPECT_EQ(parse_categories("bogus", &err), 0u);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(categories_to_string(kCatAll), "all");
  const std::uint32_t mask = kCatCredit | kCatDeadlock;
  EXPECT_EQ(parse_categories(categories_to_string(mask)), mask);
  // Static re-verdict events are their own filterable category.
  EXPECT_EQ(parse_categories("analyze", &err), kCatAnalyze);
  EXPECT_EQ(category_of(EventType::kAnalyzeVerdict), kCatAnalyze);
}

TEST(Categories, EveryTypeNameRoundTrips) {
  for (int i = 0; i < static_cast<int>(EventType::kNumEventTypes); ++i) {
    const EventType t = static_cast<EventType>(i);
    EventType back;
    ASSERT_TRUE(type_from_name(type_name(t), &back)) << type_name(t);
    EXPECT_EQ(back, t);
    // Every type maps onto exactly one category bit inside the mask.
    EXPECT_NE(category_of(t) & kCatAll, 0u);
  }
  EventType unused;
  EXPECT_FALSE(type_from_name("not_a_type", &unused));
}

TEST(FlightRecorder, KeepsLastNPerNodeAndMergesInTimeOrder) {
  FlightRecorder fr(3);
  for (int i = 0; i < 8; ++i)
    fr.observe(ev(sim::us(i), EventType::kPortEnqueue, /*node=*/0, 0, i));
  fr.observe(ev(sim::us(2), EventType::kPauseRx, /*node=*/2, 1, 99));
  EXPECT_EQ(fr.node_count(), 3);
  const auto w0 = fr.node_window(0);
  ASSERT_EQ(w0.size(), 3u);  // last 3 of the 8
  EXPECT_EQ(w0.front().value, 5);
  EXPECT_EQ(w0.back().value, 7);
  EXPECT_TRUE(fr.node_window(1).empty());
  const auto merged = fr.merged_window();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_LE(merged[i - 1].t, merged[i].t);
  // Negative node ids (node-less events) are ignored, not misfiled.
  fr.observe(ev(sim::us(9), EventType::kDrop, -1));
  EXPECT_EQ(fr.merged_window().size(), 4u);
}

// --- end-to-end: a traced 2-switch ring --------------------------------------

runner::RingScenario traced_ring(std::uint32_t categories = kCatAll) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                   cfg.switch_buffer, cfg.link.rate,
                                   cfg.tau());
  cfg.trace.enabled = true;
  cfg.trace.categories = categories;
  return runner::make_ring(cfg, 2, 1);
}

TEST(TraceRoundTrip, CsvReimportsExactly) {
  runner::RingScenario s = traced_ring();
  s.fabric->net().run_until(sim::ms(1));
  const Tracer* tr = s.fabric->net().tracer();
  ASSERT_NE(tr, nullptr);
  ASSERT_GT(tr->buffer().size(), 0u);

  std::stringstream ss;
  write_csv(ss, tr->buffer());
  std::vector<TraceEvent> back;
  std::string err;
  ASSERT_TRUE(parse_csv(ss, &back, &err)) << err;
  ASSERT_EQ(back.size(), tr->buffer().size());
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_EQ(back[i], tr->buffer()[i]) << "event " << i;
}

TEST(TraceRoundTrip, ParseCsvRejectsMalformedLines) {
  std::stringstream ss("# gfc-trace-v1\nt_ps,type,category,node,port,prio,"
                       "id,value\n12,port_enqueue,port,0,1,0,7\n");
  std::vector<TraceEvent> out;
  std::string err;
  EXPECT_FALSE(parse_csv(ss, &out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(TraceRoundTrip, SeededRunsExportByteIdentically) {
  std::string json[2], csv[2];
  for (int r = 0; r < 2; ++r) {
    runner::RingScenario s = traced_ring();
    s.fabric->net().run_until(sim::ms(1));
    std::stringstream j, c;
    write_chrome_json(j, s.fabric->net().tracer()->buffer(),
                      s.fabric->node_name_fn());
    write_csv(c, s.fabric->net().tracer()->buffer());
    json[r] = j.str();
    csv[r] = c.str();
  }
  EXPECT_GT(json[0].size(), 0u);
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(csv[0], csv[1]);
}

TEST(TraceRoundTrip, ChromeJsonHasMetadataCountersAndInstants) {
  runner::RingScenario s = traced_ring();
  s.fabric->net().run_until(sim::ms(1));
  std::stringstream j;
  write_chrome_json(j, s.fabric->net().tracer()->buffer(),
                    s.fabric->node_name_fn());
  const std::string out = j.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);  // counter tracks
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // instants
}

TEST(TraceRoundTrip, CategoryFilterDropsWholeSubsystems) {
  runner::RingScenario s = traced_ring(kCatFlow);
  s.fabric->net().run_until(sim::ms(1));
  const TraceBuffer& buf = s.fabric->net().tracer()->buffer();
  ASSERT_GT(buf.size(), 0u);  // at least the flow starts and deliveries
  bool saw_deliver = false;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i].category(), kCatFlow);
    saw_deliver |= buf[i].event_type() == EventType::kDeliver;
  }
  EXPECT_TRUE(saw_deliver);
}

// Campaign-level determinism: trials that export their traces to strings
// hash identically whether the pool runs them on 1 worker or 4.
TEST(TraceRoundTrip, CampaignTraceHashesIndependentOfJobs) {
  auto run_campaign_hashed = [](int jobs) {
    exp::Campaign c;
    c.name = "trace-determinism";
    for (int i = 0; i < 4; ++i) {
      c.add("ring/" + std::to_string(i), exp::ParamSet{}, [] {
        runner::RingScenario s = traced_ring();
        s.fabric->net().run_until(sim::ms(1));
        std::stringstream j;
        write_chrome_json(j, s.fabric->net().tracer()->buffer(),
                          s.fabric->node_name_fn());
        return exp::TrialResult().add(
            "hash", static_cast<std::int64_t>(std::hash<std::string>{}(
                        j.str())));
      });
    }
    exp::PoolOptions p;
    p.jobs = jobs;
    p.progress = false;
    return exp::run_campaign(c, p);
  };
  const exp::CampaignResult r1 = run_campaign_hashed(1);
  const exp::CampaignResult r4 = run_campaign_hashed(4);
  EXPECT_EQ(r1.json(), r4.json());
}

// --- deferred (staged) recording vs eager ------------------------------------

// The deferred hot path (stage + batched scatter flush) must be
// observably indistinguishable from eager recording: same retained ring,
// byte-identical exports.
TEST(TraceDeferred, ExportsByteIdenticalToEager) {
  std::string json[2], csv[2];
  for (int mode = 0; mode < 2; ++mode) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    cfg.trace.enabled = true;
    cfg.trace.deferred = mode == 0;
    // A small staging buffer forces many mid-run flushes, including
    // partially-filled buffers at export time.
    cfg.trace.staging_capacity = 64;
    runner::RingScenario s = runner::make_ring(cfg, 2, 1);
    s.fabric->net().run_until(sim::ms(1));
    std::stringstream j, c;
    write_chrome_json(j, s.fabric->net().tracer()->buffer(),
                      s.fabric->node_name_fn());
    write_csv(c, s.fabric->net().tracer()->buffer());
    json[static_cast<std::size_t>(mode)] = j.str();
    csv[static_cast<std::size_t>(mode)] = c.str();
  }
  EXPECT_GT(json[0].size(), 0u);
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(csv[0], csv[1]);
}

// Ring-wrap equivalence: with a ring far smaller than the event volume,
// the deferred scatter flush must retain exactly the events eager
// overwrite semantics would.
TEST(TraceDeferred, WrappedRingMatchesEager) {
  std::string csv[2];
  for (int mode = 0; mode < 2; ++mode) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    cfg.trace.enabled = true;
    cfg.trace.deferred = mode == 0;
    cfg.trace.capacity = 256;  // tiny: wraps thousands of times
    runner::RingScenario s = runner::make_ring(cfg, 2, 1);
    s.fabric->net().run_until(sim::ms(1));
    const TraceBuffer& buf = s.fabric->net().tracer()->buffer();
    EXPECT_GT(buf.dropped(), 0u);
    std::stringstream c;
    write_csv(c, buf);
    csv[static_cast<std::size_t>(mode)] = c.str();
  }
  EXPECT_EQ(csv[0], csv[1]);
}

// Flight windows rebuilt from the ring at access time must match the
// per-event windows eager mode maintains (identical while the ring has
// not overwritten past the windows).
TEST(TraceDeferred, FlightWindowsMatchEager) {
  std::vector<std::string> dumps;
  for (int mode = 0; mode < 2; ++mode) {
    runner::ScenarioConfig cfg;
    cfg.fc = runner::FcSetup::derive(runner::FcKind::kGfcBuffer,
                                     cfg.switch_buffer, cfg.link.rate,
                                     cfg.tau());
    cfg.trace.enabled = true;
    cfg.trace.deferred = mode == 0;
    runner::RingScenario s = runner::make_ring(cfg, 2, 1);
    s.fabric->net().run_until(sim::ms(1));
    std::stringstream ss;
    write_flight_dump(ss, *s.fabric->net().tracer()->flight(),
                      s.fabric->node_name_fn(), "mode check");
    dumps.push_back(ss.str());
  }
  EXPECT_GT(dumps[0].size(), 0u);
  EXPECT_EQ(dumps[0], dumps[1]);
}

// Unit-level: buffer()/flight() access mid-batch (staging buffers only
// partially filled) sees every staged record, in global record order even
// when categories interleave; later access after more records picks up
// the new tail (the rebuild cache must notice staleness).
TEST(TraceDeferred, MidBatchAccessSeesStagedRecordsInOrder) {
  TraceOptions opts;
  opts.enabled = true;
  opts.capacity = 64;
  opts.staging_capacity = 16;  // none of these appends reaches a flush
  Tracer tr(opts);
  ASSERT_TRUE(tr.deferred());
  // Interleave three categories so per-category staging must re-merge.
  tr.record(EventType::kPauseTx, sim::us(1), 0, 0, 0, 1, 10);      // pfc
  tr.record(EventType::kPortEnqueue, sim::us(2), 1, 0, 0, 2, 20);  // port
  tr.record(EventType::kCreditRx, sim::us(3), 0, 1, 0, 3, 30);     // credit
  tr.record(EventType::kPauseRx, sim::us(4), 1, 1, 0, 4, 40);      // pfc
  const TraceBuffer& buf = tr.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0].event_type(), EventType::kPauseTx);
  EXPECT_EQ(buf[1].event_type(), EventType::kPortEnqueue);
  EXPECT_EQ(buf[2].event_type(), EventType::kCreditRx);
  EXPECT_EQ(buf[3].event_type(), EventType::kPauseRx);

  const FlightRecorder* fl = tr.flight();
  ASSERT_NE(fl, nullptr);
  ASSERT_EQ(fl->node_window(0).size(), 2u);
  EXPECT_EQ(fl->node_window(0)[1].value, 30);

  // New records after a flight rebuild must invalidate the cached windows.
  tr.record(EventType::kDrop, sim::us(5), 0, 0, 0, 5, 50);
  ASSERT_EQ(tr.flight()->node_window(0).size(), 3u);
  EXPECT_EQ(tr.flight()->node_window(0)[2].value, 50);
}

// --- flight recorder on the deadlocking PFC ring -----------------------------

TEST(FlightDump, ContainsPauseWitnessOnPfcRingDeadlock) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  cfg.trace.enabled = true;
  runner::RingScenario s = runner::make_ring(cfg);
  net::Network& net = s.fabric->net();

  std::string dump;
  stats::DeadlockOptions dl;
  dl.on_detect = [&](const stats::DeadlockDetector& det) {
    std::stringstream ss;
    write_flight_dump(ss, *net.tracer()->flight(), s.fabric->node_name_fn(),
                      "witness cycle: " +
                          runner::describe_cycle(det, net));
    dump = ss.str();
  };
  stats::DeadlockDetector det(net, dl);
  net.run_until(sim::ms(20));

  ASSERT_TRUE(det.deadlocked());
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("# gfc-flight-v1"), std::string::npos);
  EXPECT_NE(dump.find("witness cycle: "), std::string::npos);
  // The pre-stall window of every node in the witness cycle holds the PFC
  // PAUSE traffic that froze it — the evidence the dump exists to provide.
  EXPECT_NE(dump.find("pause_tx"), std::string::npos);
  EXPECT_NE(dump.find("pause_rx"), std::string::npos);
  for (const auto& [nid, port] : det.cycle()) {
    const std::string tag = "node=" + std::to_string(nid);
    EXPECT_NE(dump.find(tag), std::string::npos) << tag;
  }
}

TEST(FlightDump, OnDetectMayStopTheDetector) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  runner::RingScenario s = runner::make_ring(cfg);
  int calls = 0;
  stats::DeadlockOptions dl;
  dl.recover = true;  // would re-detect every scan if not stopped
  dl.on_detect = [&calls](stats::DeadlockDetector& det) {
    ++calls;
    det.stop();
  };
  stats::DeadlockDetector det(s.fabric->net(), dl);
  s.fabric->net().run_until(sim::ms(20));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(det.detections(), 1);
}

TEST(TraceCli, ArtifactPathsFlattenTrialNames) {
  exp::CliOptions cli;
  cli.trace = true;
  cli.trace_out = "/tmp/artifacts";
  EXPECT_EQ(cli.trace_artifact("loss/ring/PFC+expiry/drop0.1", "trace.csv"),
            "/tmp/artifacts/loss_ring_PFC+expiry_drop0.1.trace.csv");
  cli.trace_out.clear();
  EXPECT_EQ(cli.trace_artifact("a b", "json"), "./a_b.json");
}

}  // namespace
}  // namespace gfc::trace
