// Unit tests for flow-size distributions and the closed-loop generator.
#include <gtest/gtest.h>

#include "runner/scenarios.hpp"
#include "workload/generator.hpp"

namespace gfc::workload {
namespace {

TEST(FlowSizeCdf, FixedAlwaysSame) {
  FlowSizeCdf cdf = FlowSizeCdf::fixed(12'345);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cdf.sample(rng), 12'345);
}

TEST(FlowSizeCdf, UniformStaysInRange) {
  FlowSizeCdf cdf = FlowSizeCdf::uniform(1'000, 10'000);
  sim::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto v = cdf.sample(rng);
    EXPECT_GE(v, 1'000);
    EXPECT_LE(v, 10'000);
  }
}

TEST(FlowSizeCdf, EnterpriseQuantilesMatchTable) {
  FlowSizeCdf cdf = FlowSizeCdf::enterprise();
  sim::Rng rng(3);
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20'000; ++i) samples.push_back(cdf.sample(rng));
  std::sort(samples.begin(), samples.end());
  // ~53 % of flows below 10 KB, ~90 % below 1 MB (Fig 15 approximation).
  const auto frac_below = [&](std::int64_t x) {
    return static_cast<double>(std::lower_bound(samples.begin(), samples.end(), x) -
                               samples.begin()) /
           static_cast<double>(samples.size());
  };
  EXPECT_NEAR(frac_below(10'000), 0.53, 0.02);
  EXPECT_NEAR(frac_below(1'000'000), 0.90, 0.02);
  EXPECT_NEAR(frac_below(100'000), 0.70, 0.02);
  EXPECT_LE(samples.back(), 30'000'000);
  EXPECT_GE(samples.front(), 250);
}

TEST(FlowSizeCdf, MeanIsHeavyTailDominated) {
  FlowSizeCdf cdf = FlowSizeCdf::enterprise();
  // Mean far above the median: heavy tail.
  EXPECT_GT(cdf.mean_bytes(), 300'000);
  EXPECT_LT(cdf.mean_bytes(), 3'000'000);
}

TEST(ClosedLoop, OneFlowPerHostAndRestarts) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_fattree(cfg, 4);
  net::Network& net = s.fabric->net();
  std::vector<net::NodeId> hosts;
  std::vector<int> racks;
  for (auto h : s.info.hosts) {
    hosts.push_back(h);
    racks.push_back(s.topo.rack_of(h));
  }
  ClosedLoopGenerator gen(net, hosts, racks, FlowSizeCdf::fixed(50'000),
                          sim::Rng(7));
  gen.start();
  EXPECT_EQ(gen.flows_started(), hosts.size());
  net.run_until(sim::ms(10));
  // 50 KB at 10G takes ~0.05 ms: many generations completed per host.
  EXPECT_GT(gen.flows_started(), hosts.size() * 20);
  EXPECT_EQ(net.counters().flows_completed + hosts.size(), gen.flows_started());
  // Destinations always cross racks.
  for (std::size_t i = 0; i < net.flow_count(); ++i) {
    const net::Flow& f = net.flow(static_cast<net::FlowId>(i));
    EXPECT_NE(s.topo.rack_of(f.src), s.topo.rack_of(f.dst));
  }
}

TEST(ClosedLoop, StopEndsReplacement) {
  runner::ScenarioConfig cfg;
  cfg.fc = runner::FcSetup::derive(runner::FcKind::kPfc, cfg.switch_buffer,
                                   cfg.link.rate, cfg.tau());
  auto s = runner::make_fattree(cfg, 4);
  net::Network& net = s.fabric->net();
  std::vector<net::NodeId> hosts;
  std::vector<int> racks;
  for (auto h : s.info.hosts) {
    hosts.push_back(h);
    racks.push_back(s.topo.rack_of(h));
  }
  ClosedLoopGenerator gen(net, hosts, racks, FlowSizeCdf::fixed(20'000),
                          sim::Rng(7));
  gen.start();
  net.run_until(sim::ms(1));
  gen.stop();
  const auto started = gen.flows_started();
  net.run_until(sim::ms(5));
  EXPECT_EQ(gen.flows_started(), started);
}

}  // namespace
}  // namespace gfc::workload
