#!/usr/bin/env python3
"""Compare a fresh microbench JSON run against a recorded baseline run in
BENCH_microbench.json and fail on events/sec regressions.

Usage:
  tools/check_bench_regression.py FRESH.json \
      [--baseline-file BENCH_microbench.json] [--baseline-label pooled-engine] \
      [--tolerance 0.05] [--filter REGEX] [--no-normalize] [--report OUT.md]

The recorded baselines were measured on one specific box, while CI runs on
whatever runner the job lands on, so raw items_per_second ratios mostly
measure the hardware. By default the checker therefore normalizes: it
computes the median fresh/baseline throughput ratio across every common
benchmark (the machine-speed factor) and flags a benchmark only when it is
more than --tolerance BELOW that shared factor — i.e. it regressed
relative to the rest of the suite, which survives a machine swap. Pass
--no-normalize for runs on the recording box itself, where absolute
ratios are meaningful.

Exit status: 0 ok, 1 regression found, 2 usage/data error.
"""
import argparse
import json
import re
import statistics
import sys


def load_baseline(path, label):
    with open(path) as f:
        data = json.load(f)
    for run in data.get("runs", []):
        if run.get("label") == label:
            return {
                b["name"]: b
                for b in run.get("benchmarks", [])
                if "items_per_second" in b
            }
    sys.exit(f"error: no run labelled {label!r} in {path}")


def load_fresh(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: b
        for b in data.get("benchmarks", [])
        if "items_per_second" in b and b.get("run_type", "iteration") == "iteration"
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="google-benchmark --benchmark_out JSON")
    ap.add_argument("--baseline-file", default="BENCH_microbench.json")
    ap.add_argument("--baseline-label", default="pooled-engine")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional shortfall (default 0.05 = 5%%)")
    ap.add_argument("--filter", default=".*",
                    help="regex of benchmark names to check")
    ap.add_argument("--no-normalize", action="store_true",
                    help="compare absolute ratios (same-machine runs only)")
    ap.add_argument("--report", default=None,
                    help="write a markdown delta table here")
    args = ap.parse_args()

    baseline = load_baseline(args.baseline_file, args.baseline_label)
    fresh = load_fresh(args.fresh)
    name_re = re.compile(args.filter)

    common = sorted(set(baseline) & set(fresh))
    if not common:
        sys.exit("error: no common benchmarks between fresh run and baseline")

    ratios = {
        n: fresh[n]["items_per_second"] / baseline[n]["items_per_second"]
        for n in common
    }
    scale = 1.0 if args.no_normalize else statistics.median(ratios.values())

    rows = []
    failures = []
    for name in common:
        rel = ratios[name] / scale
        checked = bool(name_re.search(name))
        if checked and rel < 1.0 - args.tolerance:
            failures.append((name, rel))
        rows.append((name, ratios[name], rel, checked))

    lines = [
        f"# Microbench delta vs `{args.baseline_label}`",
        "",
        f"machine-speed factor (median ratio): {scale:.3f}"
        + (" (normalization disabled)" if args.no_normalize else ""),
        f"tolerance: {args.tolerance:.0%}",
        "",
        "| benchmark | fresh/baseline | normalized | status |",
        "|---|---|---|---|",
    ]
    for name, raw, rel, checked in rows:
        if not checked:
            status = "skipped"
        elif rel < 1.0 - args.tolerance:
            status = "**REGRESSED**"
        else:
            status = "ok"
        lines.append(f"| {name} | {raw:.3f}x | {rel:.3f}x | {status} |")
    report = "\n".join(lines) + "\n"

    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    print(report)

    if failures:
        for name, rel in failures:
            print(f"REGRESSION: {name} at {rel:.3f}x of suite-normalized "
                  f"baseline (limit {1.0 - args.tolerance:.3f}x)",
                  file=sys.stderr)
        return 1
    print(f"ok: {sum(1 for r in rows if r[3])} benchmark(s) within "
          f"{args.tolerance:.0%} of the {args.baseline_label} baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
