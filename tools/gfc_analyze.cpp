// gfc-analyze: static deadlock-risk analysis from the command line.
//
// Builds one of the named scenarios (topology + routing + flows), runs
// the src/analyze/ pass — full elementary-cycle CBD enumeration, safety-
// bound verification, routing lints — and prints a human report and/or
// the deterministic "gfc-analyze-v1" JSON. No simulation event is ever
// scheduled: everything here is decided from the configuration alone.
//
//   gfc-analyze SCENARIO [options]
//
// SCENARIO:
//   ring[:N[:H]]        N-switch ring (default 3), flows i -> i+H (def. 2)
//   fattree:K           k-ary fat-tree, shortest-path ECMP, no failures
//   fattree:K:seed=S    + the Table 1 recipe: 5% random failures from the
//                       k-salted seed stream, CBD stress flows if covered
//   fattree:K:fail=a,b  + fail the a-th, b-th, ... switch-to-switch links
//   incast:N            N-to-1 dumbbell
//   loop2               2-switch routing loop (the minimal lint fixture)
//
// Options:
//   --fc NAME        none|pfc|cbfc|gfc-buffer|gfc-time|gfc-conceptual|dcfit
//                    (default pfc)
//   --cbd-free-routing
//                    replace the scenario's routing with the up*/down*
//                    CBD-free tables (src/mech/cbd_routing) before analysis
//   --list-scenarios print the scenario grammar and exit
//   --buffer BYTES   per-port buffer B_m (default 300000)
//   --b1/--b0/--bm/--xoff/--xon BYTES, --period-us T
//                    explicit mechanism parameters; omitted ones are
//                    derived from --buffer via the paper's bounds
//   --max-cycles N   Johnson enumeration cap (default 4096)
//   --failures K     exhaustively fail every combination of <= K
//                    switch-to-switch links, reroute (shortest paths) and
//                    re-analyze; the report gains a "failure_sweep"
//                    section with per-combo verdicts and minimal culprit
//                    sets (combos flipping deadlock_free -> risky)
//   --suggest-repairs
//                    propose greedy minimal hitting sets (link removals
//                    and turn restrictions) breaking the enumerated
//                    (preferring activated) cycles, statically re-verified
//   --json PATH      write the JSON report to PATH ('-' = stdout, which
//                    suppresses the human report)
//   --fail           exit 3 when the verdict is at_risk
//
// Exit status: 0 ok, 2 usage error, 3 at-risk verdict under --fail.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analyze/analyze.hpp"
#include "analyze/repair.hpp"
#include "analyze/scenario.hpp"
#include "analyze/sweep.hpp"
#include "mech/cbd_routing.hpp"

using namespace gfc;

namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s SCENARIO [--fc NAME] [--buffer BYTES]\n"
      "          [--b1 B] [--b0 B] [--bm B] [--xoff B] [--xon B]\n"
      "          [--period-us T] [--max-cycles N] [--json PATH] [--fail]\n"
      "          [--cbd-free-routing] [--failures K] [--suggest-repairs]\n"
      "SCENARIO: ring[:N[:H]] | fattree:K[:seed=S|:fail=a,b] | incast:N |"
      " loop2\n"
      "          (%s --list-scenarios for details)\n",
      prog, prog);
  return 2;
}

int list_scenarios() {
  std::fputs(
      "gfc-analyze scenarios (SCENARIO argument grammar):\n"
      "  ring              3-switch ring, flows i -> i+2 (Figure 1)\n"
      "  ring:N            N-switch ring, flows i -> i+2\n"
      "  ring:N:H          N-switch ring, flows i -> i+H clockwise\n"
      "  fattree:K         k-ary fat-tree, shortest-path ECMP, no failures\n"
      "  fattree:K:seed=S  + Table 1 recipe: 5%% random switch-link failures\n"
      "                    from the k-salted seed stream, CBD stress flows\n"
      "                    when the failure set admits them\n"
      "  fattree:K:fail=a,b,...\n"
      "                    + fail the a-th, b-th, ... switch-to-switch link\n"
      "                    (indices into the deterministic switch-link list)\n"
      "  incast:N          N senders, 1 receiver, 1 switch dumbbell\n"
      "  loop2             2-switch routing loop (minimal lint fixture)\n",
      stdout);
  return 0;
}

bool parse_fc_kind(const std::string& name, runner::FcKind* out) {
  if (name == "none") *out = runner::FcKind::kNone;
  else if (name == "pfc") *out = runner::FcKind::kPfc;
  else if (name == "cbfc") *out = runner::FcKind::kCbfc;
  else if (name == "gfc-buffer") *out = runner::FcKind::kGfcBuffer;
  else if (name == "gfc-time") *out = runner::FcKind::kGfcTime;
  else if (name == "gfc-conceptual") *out = runner::FcKind::kGfcConceptual;
  else if (name == "dcfit") *out = runner::FcKind::kDcfit;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string spec = argv[1];
  if (spec == "--list-scenarios") return list_scenarios();

  runner::FcKind kind = runner::FcKind::kPfc;
  std::int64_t buffer = 300'000;
  std::int64_t b1 = -1, b0 = -1, bm = -1, xoff = -1, xon = -1;
  double period_us = -1;
  std::size_t max_cycles = 4096;
  std::string json_path;
  bool fail_on_risk = false;
  bool cbd_free = false;
  int failures = 0;
  bool suggest_repairs = false;

  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](std::int64_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtoll(argv[++i], nullptr, 10);
      return true;
    };
    if (!std::strcmp(a, "--fc")) {
      if (i + 1 >= argc || !parse_fc_kind(argv[++i], &kind))
        return usage(argv[0]);
    } else if (!std::strcmp(a, "--buffer")) {
      if (!value(&buffer)) return usage(argv[0]);
    } else if (!std::strcmp(a, "--b1")) {
      if (!value(&b1)) return usage(argv[0]);
    } else if (!std::strcmp(a, "--b0")) {
      if (!value(&b0)) return usage(argv[0]);
    } else if (!std::strcmp(a, "--bm")) {
      if (!value(&bm)) return usage(argv[0]);
    } else if (!std::strcmp(a, "--xoff")) {
      if (!value(&xoff)) return usage(argv[0]);
    } else if (!std::strcmp(a, "--xon")) {
      if (!value(&xon)) return usage(argv[0]);
    } else if (!std::strcmp(a, "--period-us")) {
      if (i + 1 >= argc) return usage(argv[0]);
      period_us = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(a, "--max-cycles")) {
      std::int64_t v = 0;
      if (!value(&v) || v < 1) return usage(argv[0]);
      max_cycles = static_cast<std::size_t>(v);
    } else if (!std::strcmp(a, "--json")) {
      if (i + 1 >= argc) return usage(argv[0]);
      json_path = argv[++i];
    } else if (!std::strcmp(a, "--failures")) {
      std::int64_t v = 0;
      if (!value(&v) || v < 1 || v > 8) return usage(argv[0]);
      failures = static_cast<int>(v);
    } else if (!std::strcmp(a, "--suggest-repairs")) {
      suggest_repairs = true;
    } else if (!std::strcmp(a, "--fail")) {
      fail_on_risk = true;
    } else if (!std::strcmp(a, "--cbd-free-routing")) {
      cbd_free = true;
    } else if (!std::strcmp(a, "--list-scenarios")) {
      return list_scenarios();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      return usage(argv[0]);
    }
  }

  analyze::BuiltScenario scenario;
  std::string err;
  if (!analyze::build_scenario(spec, &scenario, &err)) {
    std::fprintf(stderr, "%s\n(%s --list-scenarios shows the grammar)\n",
                 err.c_str(), argv[0]);
    return 2;
  }

  if (cbd_free) {
    // Re-route before analysis: the verdict then reflects the restricted
    // tables (expected: zero CBD cycles on any topology).
    mech::RoutingStats rstats;
    scenario.routing = mech::cbd_free_routes(scenario.topo, &rstats);
    std::fprintf(stderr,
                 "cbd-free routing installed: cbd_free=%s pairs=%zu "
                 "unroutable=%zu stretch avg=%.3f max=%.3f imbalance=%.3f\n",
                 rstats.cbd_free ? "yes" : "NO", rstats.pairs,
                 rstats.unroutable_pairs, rstats.avg_stretch,
                 rstats.max_stretch, rstats.load_imbalance);
  }

  runner::ScenarioConfig cfg;
  cfg.switch_buffer = buffer;
  cfg.fc = runner::FcSetup::derive(kind, buffer, cfg.link.rate, cfg.tau(),
                                   cfg.link.mtu);
  // Explicit overrides replace the derived values field by field, so a
  // deliberately out-of-bound parameter can be checked against the bound.
  if (b1 >= 0) cfg.fc.b1 = b1;
  if (b0 >= 0) cfg.fc.b0 = b0;
  if (bm >= 0) cfg.fc.bm = bm;
  if (xoff >= 0) cfg.fc.xoff = xoff;
  if (xon >= 0) cfg.fc.xon = xon;
  if (period_us >= 0) cfg.fc.period = sim::us(period_us);

  analyze::Input in;
  in.topo = &scenario.topo;
  in.routing = &scenario.routing;
  in.cfg = cfg;
  in.flows = scenario.flows;
  in.max_cycles = max_cycles;
  in.scenario = scenario.name;
  analyze::Report report = failures > 0 ? analyze::sweep_failures(in, failures)
                                        : analyze::analyze(in);
  if (suggest_repairs) report.repairs = analyze::suggest_repairs(in, report);

  if (json_path == "-") {
    std::fputs(report.json().c_str(), stdout);
  } else {
    report.print_human();
    if (!json_path.empty()) {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 2;
      }
      std::fputs(report.json().c_str(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
  }

  if (fail_on_risk && report.verdict() == analyze::Verdict::kAtRisk) return 3;
  return 0;
}
