#!/usr/bin/env python3
"""Fail if src/ (or tools/) contains a known source of nondeterminism.

The simulator's contract is bit-identical output for a given seed at any
--jobs count (tests/exp_test.cpp pins it; the gfc-analyze JSON is compared
byte-for-byte in CI). Four classes of code break that contract quietly:

  * wall-clock reads: time(...), std::chrono::system_clock
  * the unseeded C PRNG: rand(), srand(time(...)) idioms
  * hash-ordered containers iterated in output paths:
    std::unordered_map / std::unordered_set (use std::map / std::set; the
    hot paths here are find/insert-bound, where the rb-tree is fine)

Run: tools/lint_determinism.py [root]   (default root: repo root)
Exit status: 0 clean, 1 findings.
"""

import pathlib
import re
import sys

# (regex, why it is banned). Word boundaries keep tx_time(, format_time(,
# grand(... etc. out of the match set.
RULES = [
    (re.compile(r"(?<![\w:.])time\s*\("), "wall-clock time() read"),
    (re.compile(r"system_clock"), "std::chrono::system_clock wall-clock read"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "unseeded C PRNG (use sim::Rng)"),
    (re.compile(r"unordered_(map|set)"),
     "hash-ordered container (use std::map / std::set)"),
    (re.compile(r"this_thread::get_id"),
     "thread identity read (worker identity must never reach results)"),
]

# Extra rules for the analyzer only: src/analyze promises byte-identical
# reports (golden JSON cmp in CI, and the incremental analyzer's whole
# correctness argument is byte-equality with from-scratch analysis).
# Iteration order must therefore never depend on addresses: a map or set
# keyed on pointers iterates in allocation order, which varies run to run
# under ASLR.
ANALYZE_RULES = [
    (re.compile(r"\b(?:map|set)\s*<[^<>,]*\*\s*[,>]"),
     "pointer-keyed map/set in src/analyze (address-ordered iteration)"),
    (re.compile(r"\bsort\([^;]*\[\]\([^)]*\*\s*\w+,"),
     "sorting by pointer comparator in src/analyze (address order)"),
]

# Extra rules for the parallel core only: src/par promises byte-identical
# results at any shard count, so every piece of cross-thread state must be
# an atomic or sit behind the barrier mutex. These patterns catch the
# cheap ways to smuggle shared state past that discipline.
PAR_RULES = [
    # Skips static member *functions* (a '(' before any '=', ';' or '{').
    (re.compile(r"^\s*static\s+(?!const\b|constexpr\b|assert)(?![^;{=]*\()"),
     "mutable static in src/par (shared state outside the barrier protocol)"),
    (re.compile(r"\bvolatile\b"),
     "volatile is not synchronization (use std::atomic)"),
    (re.compile(r"thread_local"),
     "thread-local state in src/par (worker-dependent results)"),
]

SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}


def lint_file(path: pathlib.Path, in_par: bool,
              in_analyze: bool = False) -> list[str]:
    rules = list(RULES)
    if in_par:
        rules += PAR_RULES
    if in_analyze:
        rules += ANALYZE_RULES
    findings = []
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        code = line.split("//", 1)[0]  # comments may name the banned APIs
        for rule, why in rules:
            if rule.search(code):
                findings.append(f"{path}:{lineno}: {why}\n    {line.strip()}")
    return findings


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                        else pathlib.Path(__file__).resolve().parent.parent)
    src = root / "src"
    if not src.is_dir():
        print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
        return 2
    findings = []
    par = src / "par"
    analyze = src / "analyze"
    for path in sorted(src.rglob("*")):
        if path.suffix in SUFFIXES:
            findings.extend(lint_file(path, path.is_relative_to(par),
                                      path.is_relative_to(analyze)))
    # tools/ feeds the golden artifacts (gfc-analyze JSON above all), so it
    # obeys the same base rules as src/.
    tools = root / "tools"
    if tools.is_dir():
        for path in sorted(tools.rglob("*")):
            if path.suffix in SUFFIXES:
                findings.extend(lint_file(path, False, False))
    if findings:
        print("determinism lint: %d finding(s)" % len(findings))
        for f in findings:
            print(f)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
